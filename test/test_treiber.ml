(* Treiber stack tests: LIFO semantics, and no slot lost or duplicated
   under concurrent push/pop from real domains — the property the pool's
   starvation path depends on (a lost overflow slot is leaked capacity, a
   duplicated one is a double allocation). *)

module T = Nbr_sync.Treiber

let test_sequential () =
  let s = T.create () in
  Alcotest.(check bool) "fresh stack empty" true (T.is_empty s);
  Alcotest.(check (option int)) "pop on empty" None (T.pop s);
  for i = 1 to 5 do
    T.push s i
  done;
  Alcotest.(check int) "length" 5 (T.length s);
  for i = 5 downto 1 do
    Alcotest.(check (option int)) "LIFO order" (Some i) (T.pop s)
  done;
  Alcotest.(check (option int)) "drained" None (T.pop s)

(* Pushers insert disjoint ranges while poppers drain concurrently; when
   the dust settles every value must have been popped exactly once. *)
let test_no_lost_slots () =
  let n_pushers = 2 and n_poppers = 2 in
  let per_pusher = 20_000 in
  let total = n_pushers * per_pusher in
  let s = T.create () in
  let popped = Array.make total (-1) in
  let n_popped = Atomic.make 0 in
  let pushers_done = Atomic.make 0 in
  let pushers =
    List.init n_pushers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_pusher - 1 do
              T.push s ((p * per_pusher) + i)
            done;
            Atomic.incr pushers_done))
  in
  let poppers =
    List.init n_poppers (fun _ ->
        Domain.spawn (fun () ->
            let running = ref true in
            while !running do
              match T.pop s with
              | Some v ->
                  (* Distinct indices: the FAA hands each pop a private
                     cell, so plain array writes cannot race. *)
                  popped.(Atomic.fetch_and_add n_popped 1) <- v
              | None ->
                  (* Empty is terminal only once no push can follow. *)
                  if Atomic.get pushers_done = n_pushers && T.is_empty s then
                    running := false
                  else Domain.cpu_relax ()
            done))
  in
  List.iter Domain.join pushers;
  List.iter Domain.join poppers;
  Alcotest.(check int) "every push popped" total (Atomic.get n_popped);
  Array.sort compare popped;
  for i = 0 to total - 1 do
    if popped.(i) <> i then
      Alcotest.failf "slot %d popped %d times"
        i
        (let c = ref 0 in
         Array.iter (fun v -> if v = i then incr c) popped;
         !c)
  done

let suite =
  [
    Alcotest.test_case "sequential LIFO" `Quick test_sequential;
    Alcotest.test_case "no lost slots under domains" `Quick
      test_no_lost_slots;
  ]
